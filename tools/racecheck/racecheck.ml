(* Domain-safety race check over OCaml parsetrees (compiler-libs).

   PR 7 sharded the event engine across OCaml 5 domains; the
   byte-identical-for-every-K guarantee now rests on a convention: code
   running on shard lanes must touch cross-lane mutable state only
   through [Atomic], under a consistently-held [Mutex], or via the
   window-barrier outbox protocol.  This tool machine-checks that
   convention in two passes.

   Pass 1 walks every module it is pointed at and collects

     (a) module-level mutable ROOTS — top-level [ref]s, [Hashtbl.create],
         [Buffer]s, arrays, queues/stacks, record literals with mutable
         fields, [Atomic.make] cells and [Mutex.create] locks (the last
         two classified, not flagged) — plus, for the summary table,
         record types with mutable fields escaping through the module's
         [.mli]; and

     (b) per-function EFFECT SUMMARIES: which roots the function reads
         and writes (and under which syntactic mutex guards — a
         [Mutex.protect m (fun () -> ...)] body or a
         [Mutex.lock m] ... [Mutex.unlock m] span), which functions it
         references, and whether it is a shard-lane ENTRY (it lives in
         the engine's lane machinery — shard.ml, par_engine.ml,
         engine.ml, pool.ml — or constructs lane thunks by referencing
         [Engine.schedule]/[schedule_at], [Pool.Gang.launch], [Pool.map],
         [Runner.map] or [Domain.spawn]).

   Pass 2 computes two interprocedural closures over the summaries:

     - TAINT: the functions reachable from lane entries along reference
       edges (references, not just application heads, so higher-order
       call sites count) — an over-approximation of "may run on a shard
       lane";
     - GUARD ENVIRONMENTS: a fixpoint assigning every non-exported
       function the intersection, over all its reference sites, of the
       mutex guards held there (plus the referencing function's own
       environment).  A helper that is only ever named inside
       [Mutex.protect lock (fun () -> ...)] is thereby proven to run
       with [lock] held even though its own body takes no lock — e.g.
       [Name.intern_child].  Exported functions (named in the [.mli],
       or every function when there is no [.mli]) and lane entries get
       the empty environment: anyone may call them bare.

   and reports:

     bare-shared-mutable      a mutable root with no guarded write
                              anywhere, reachable from lane code
                              (reported at the root's definition);
     inconsistent-guard       a root that is mutex-guarded at some write
                              sites but written — or, when every write
                              is guarded, read from lane code — without
                              the guard (reported at the bare site);
     outbox-bypass            direct use of [Shard.enqueue] or the lane
                              outboxes outside the engine internals:
                              cross-lane events must go through
                              [Engine.schedule] so the open window's
                              outbox protocol applies;
     atomic-read-modify-write a lane-reachable [Atomic.get] -> [Atomic.set]
                              sequence on the same root in one function
                              with no common mutex: lost updates — use
                              [fetch_and_add]/[compare_and_set] or hold
                              the lock.

   Suppression mirrors the determinism lint (tools/lint), sharing its
   machinery: inline [(* race: <rule> <why> *)] on the flagged line or
   the line above, or an allowlist file; unjustified annotations and
   suppressions no finding uses are themselves errors.

   Known soundness limits (documented in DESIGN §14): closures created
   under a guard are assumed to run under it (true for the immediate
   [Mutex.protect] argument and stdlib iterators, not for escaping
   closures); [lock]/[unlock] tracking is straight-line; per-instance
   mutable state (record fields behind abstract types) is out of scope —
   lane confinement of per-server state is the engine's partitioning
   invariant, audited at runtime, not a static property of this tool. *)

module Suppress = Terradir_lint.Suppress

type finding = Suppress.finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let rule_bare = "bare-shared-mutable"
let rule_guard = "inconsistent-guard"
let rule_outbox = "outbox-bypass"
let rule_rmw = "atomic-read-modify-write"
let rule_parse_error = "parse-error"

let all_rules = [ rule_bare; rule_guard; rule_outbox; rule_rmw ]

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* ---- collected facts ---- *)

type pos = { p_file : string; p_line : int; p_col : int }

type root_kind = Plain of string (* description of the container form *) | Atomic | Lock

type root = {
  r_key : string; (* "Module.name" *)
  r_kind : root_kind;
  r_pos : pos;
}

type access = {
  ac_root : string;
  ac_write : bool;
  ac_guards : SSet.t; (* mutex root keys held at the site *)
  ac_pos : pos;
}

type fref = {
  fr_callee : string; (* function key *)
  fr_guards : SSet.t;
}

type func = {
  fn_key : string; (* "Module.name" *)
  fn_module : string;
  fn_name : string;
  fn_pos : pos;
  mutable fn_accesses : access list;
  mutable fn_refs : fref list;
  mutable fn_entry : bool;
  mutable fn_agets : (string * SSet.t) list; (* Atomic.get sites: root, guards *)
  mutable fn_asets : (string * SSet.t * pos) list; (* naive Atomic.set sites *)
}

type analysis = {
  roots : root SMap.t; (* by root key *)
  funcs : func SMap.t; (* by function key *)
  exported : SSet.t; (* exported function keys *)
  exposed_mutable : (string * string list) list; (* (Module.type, mutable fields) via .mli *)
  outbox_sites : (pos * string) list; (* site, offending name *)
  parse_errors : finding list;
  sources : (string * string) list; (* scanned .ml path -> source, for suppressions *)
}

(* ---- helpers ---- *)

let pos_of loc =
  let p = loc.Location.loc_start in
  { p_file = p.Lexing.pos_fname; p_line = p.Lexing.pos_lnum; p_col = p.Lexing.pos_cnum - p.Lexing.pos_bol }

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Files whose every function is lane-resident: the engine's own lane
   machinery runs on worker domains by construction. *)
let entry_files = SSet.of_list [ "shard.ml"; "par_engine.ml"; "engine.ml"; "pool.ml" ]

(* A reference to any of these marks the containing function as a lane
   entry: it constructs thunks that later execute on a shard lane (or a
   worker domain of the experiment fan-out pool). *)
let entry_markers =
  [
    ("Engine", "schedule"); ("Engine", "schedule_at"); ("Gang", "launch"); ("Pool", "map");
    ("Runner", "map"); ("Domain", "spawn");
  ]

(* Modules allowed to touch Shard queues/outboxes directly. *)
let outbox_internal = SSet.of_list [ "Shard"; "Engine"; "Par_engine" ]

let outbox_functions = SSet.of_list [ "enqueue"; "outbox_push"; "drain_outboxes" ]

let flatten lid = match Longident.flatten lid with parts -> parts | exception _ -> []

(* Mutating operations per container module (first argument is the
   mutated value); any other mention of a root is a read. *)
let write_ops =
  [
    ("Hashtbl", [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]);
    ("Buffer",
     [ "add_char"; "add_string"; "add_bytes"; "add_substring"; "add_subbytes"; "add_utf_8_uchar";
       "add_channel"; "add_buffer"; "clear"; "reset"; "truncate" ]);
    ("Array", [ "set"; "unsafe_set"; "fill"; "blit"; "sort"; "stable_sort"; "fast_sort" ]);
    ("Bytes", [ "set"; "unsafe_set"; "fill"; "blit" ]);
    ("Queue", [ "push"; "add"; "pop"; "take"; "clear"; "transfer"; "drop" ]);
    ("Stack", [ "push"; "pop"; "drop"; "clear" ]);
  ]

let is_write_op m op =
  List.exists (fun (m', ops) -> m = m' && List.mem op ops) write_ops

(* ---- pass 1a: top-level names (roots and functions) per module ---- *)

type modinfo = {
  mi_roots : SSet.t;
  mi_funcs : SSet.t;
}

let rec peel (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e) -> peel e
  | _ -> e

let is_function e =
  match (peel e).pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false

(* Record fields declared mutable anywhere in the scanned tree: a
   top-level literal mentioning one is a mutable root. *)
let mutable_fields_of_structure str =
  let fields = ref SSet.empty in
  let it =
    let default = Ast_iterator.default_iterator in
    let type_declaration it (td : Parsetree.type_declaration) =
      (match td.ptype_kind with
      | Ptype_record labels ->
        List.iter
          (fun (l : Parsetree.label_declaration) ->
            if l.pld_mutable = Mutable then fields := SSet.add l.pld_name.txt !fields)
          labels
      | _ -> ());
      default.type_declaration it td
    in
    { default with type_declaration }
  in
  it.structure it str;
  !fields

let root_kind_of_expr ~mutable_fields e =
  match (peel e).pexp_desc with
  | Pexp_apply (f, _) -> (
    match (peel f).pexp_desc with
    | Pexp_ident { txt; _ } -> (
      match flatten txt with
      | [ "ref" ] -> Some (Plain "ref")
      | [ "Atomic"; "make" ] -> Some Atomic
      | [ "Mutex"; "create" ] | [ "Condition"; "create" ] -> Some Lock
      | [ "Hashtbl"; "create" ] -> Some (Plain "Hashtbl.t")
      | [ "Buffer"; "create" ] -> Some (Plain "Buffer.t")
      | [ "Array"; ("make" | "init" | "create_float" | "of_list" | "copy") ] -> Some (Plain "array")
      | [ "Float"; "Array"; ("create" | "make") ] -> Some (Plain "floatarray")
      | [ "Bytes"; ("create" | "make" | "of_string") ] -> Some (Plain "bytes")
      | [ "Queue"; "create" ] -> Some (Plain "Queue.t")
      | [ "Stack"; "create" ] -> Some (Plain "Stack.t")
      | [ "Weak"; "create" ] -> Some (Plain "Weak.t")
      | _ -> None)
    | _ -> None)
  | Pexp_array (_ :: _) -> Some (Plain "array literal")
  | Pexp_record (fields, _) ->
    if
      List.exists
        (fun ((lid : Longident.t Location.loc), _) ->
          match flatten lid.txt with
          | [] -> false
          | parts -> SSet.mem (List.nth parts (List.length parts - 1)) mutable_fields)
        fields
    then Some (Plain "record with mutable fields")
    else None
  | _ -> None

(* ---- .mli facts ---- *)

type mli_facts = {
  mf_values : SSet.t;
  mf_mutable_records : (string * string list) list; (* type name, mutable fields *)
}

let mli_facts_of_signature sg =
  let values = ref SSet.empty and records = ref [] in
  let rec item (si : Parsetree.signature_item) =
    match si.psig_desc with
    | Psig_value vd -> values := SSet.add vd.pval_name.txt !values
    | Psig_type (_, tds) ->
      List.iter
        (fun (td : Parsetree.type_declaration) ->
          match td.ptype_kind with
          | Ptype_record labels ->
            let muts =
              List.filter_map
                (fun (l : Parsetree.label_declaration) ->
                  if l.pld_mutable = Mutable then Some l.pld_name.txt else None)
                labels
            in
            if muts <> [] then records := (td.ptype_name.txt, muts) :: !records
          | _ -> ())
        tds
    | Psig_module md -> module_type md.pmd_type
    | Psig_recmodule mds -> List.iter (fun (md : Parsetree.module_declaration) -> module_type md.pmd_type) mds
    | _ -> ()
  and module_type (mt : Parsetree.module_type) =
    match mt.pmty_desc with Pmty_signature sg -> List.iter item sg | _ -> ()
  in
  List.iter item sg;
  { mf_values = !values; mf_mutable_records = List.rev !records }

(* ---- pass 1b: summarize one module's functions ---- *)

(* [scope] is the innermost-first chain of module names for resolving
   bare identifiers; [mods] maps every scanned (sub)module name to its
   top-level names. *)
let resolve_name ~mods ~scope name select =
  let rec go = function
    | [] -> None
    | m :: rest -> (
      match SMap.find_opt m mods with
      | Some mi when SSet.mem name (select mi) -> Some (m ^ "." ^ name)
      | _ -> go rest)
  in
  go scope

let resolve_parts ~mods ~scope parts select =
  match parts with
  | [] -> None
  | [ name ] -> resolve_name ~mods ~scope name select
  | parts ->
    let n = List.length parts in
    let m = List.nth parts (n - 2) and name = List.nth parts (n - 1) in
    (match SMap.find_opt m mods with
    | Some mi when SSet.mem name (select mi) -> Some (m ^ "." ^ name)
    | _ -> None)

let summarize_module ~mods ~scope_module str ~funcs ~outbox_sites =
  let scope_of inner = inner @ [ scope_module ] in
  (* Walk one top-level function body, accumulating into [fn]. *)
  let walk_function ~scope fn body =
    let guards = ref SSet.empty in
    let resolve_root parts = resolve_parts ~mods ~scope parts (fun mi -> mi.mi_roots) in
    let resolve_func parts = resolve_parts ~mods ~scope parts (fun mi -> mi.mi_funcs) in
    let add_access root ~write loc =
      fn.fn_accesses <-
        { ac_root = root; ac_write = write; ac_guards = !guards; ac_pos = pos_of loc }
        :: fn.fn_accesses
    in
    let last2 parts =
      let n = List.length parts in
      if n >= 2 then Some (List.nth parts (n - 2), List.nth parts (n - 1)) else None
    in
    let note_ident loc lid =
      let parts = flatten lid in
      (match last2 parts with
      | Some pair ->
        if List.mem pair entry_markers then fn.fn_entry <- true;
        let m, f = pair in
        if m = "Shard" && SSet.mem f outbox_functions && not (SSet.mem scope_module outbox_internal)
        then outbox_sites := (pos_of loc, m ^ "." ^ f) :: !outbox_sites
      | None -> ());
      (match resolve_root parts with
      | Some root -> add_access root ~write:false loc
      | None -> ());
      match resolve_func parts with
      | Some callee -> fn.fn_refs <- { fr_callee = callee; fr_guards = !guards } :: fn.fn_refs
      | None -> ()
    in
    let rec expr (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_ident { txt; loc } -> note_ident loc txt
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> apply loc txt args
      | Pexp_setfield (lhs, fld, v) ->
        (match fld.txt with
        | Longident.Lident f | Longident.Ldot (_, f) ->
          if f = "outboxes" && not (SSet.mem scope_module outbox_internal) then
            outbox_sites := (pos_of fld.loc, "<field> outboxes") :: !outbox_sites
        | _ -> ());
        (match lhs.pexp_desc with
        | Pexp_ident { txt; loc } -> (
          match resolve_root (flatten txt) with
          | Some root -> add_access root ~write:true loc
          | None -> expr lhs)
        | _ -> expr lhs);
        expr v
      | Pexp_field (lhs, fld) ->
        (match fld.txt with
        | Longident.Lident f | Longident.Ldot (_, f) ->
          if f = "outboxes" && not (SSet.mem scope_module outbox_internal) then
            outbox_sites := (pos_of fld.loc, "<field> outboxes") :: !outbox_sites
        | _ -> ());
        expr lhs
      | _ -> Ast_iterator.default_iterator.expr iter_shim e
    and apply loc lid args =
      let parts = flatten lid in
      let nolabel = List.filter_map (function (Asttypes.Nolabel, a) -> Some a | _ -> None) args in
      let root_of_arg (a : Parsetree.expression) =
        match (peel a).pexp_desc with
        | Pexp_ident { txt; _ } -> resolve_root (flatten txt)
        | _ -> None
      in
      let visit_rest skip =
        List.iter (fun (_, a) -> if not (List.memq a skip) then expr a) args
      in
      match (parts, nolabel) with
      | [ ":=" ], (l :: _ as all) -> (
        match root_of_arg l with
        | Some root ->
          add_access root ~write:true loc;
          visit_rest [ l ]
        | None -> List.iter expr all)
      | [ ("incr" | "decr") ], [ l ] -> (
        match root_of_arg l with
        | Some root -> add_access root ~write:true loc
        | None -> expr l)
      | [ "Mutex"; "protect" ], [ m; fbody ] -> (
        match (root_of_arg m, (peel fbody).pexp_desc) with
        | Some lock, Pexp_fun (_, _, _, body) ->
          let saved = !guards in
          guards := SSet.add lock !guards;
          expr body;
          guards := saved
        | _ ->
          expr m;
          expr fbody)
      | [ "Mutex"; "lock" ], [ m ] -> (
        match root_of_arg m with Some lock -> guards := SSet.add lock !guards | None -> expr m)
      | [ "Mutex"; "unlock" ], [ m ] -> (
        match root_of_arg m with Some lock -> guards := SSet.remove lock !guards | None -> expr m)
      | [ "Atomic"; "get" ], l :: _ -> (
        match root_of_arg l with
        | Some root ->
          fn.fn_agets <- (root, !guards) :: fn.fn_agets;
          add_access root ~write:false loc;
          visit_rest [ l ]
        | None -> visit_rest [])
      | [ "Atomic"; "set" ], l :: _ -> (
        match root_of_arg l with
        | Some root ->
          fn.fn_asets <- (root, !guards, pos_of loc) :: fn.fn_asets;
          add_access root ~write:true loc;
          visit_rest [ l ]
        | None -> visit_rest [])
      | [ "Atomic"; ("exchange" | "compare_and_set" | "fetch_and_add" | "incr" | "decr") ], l :: _
        -> (
        match root_of_arg l with
        | Some root ->
          add_access root ~write:true loc;
          visit_rest [ l ]
        | None -> visit_rest [])
      | [ m; op ], l :: _ when is_write_op m op -> (
        match root_of_arg l with
        | Some root ->
          add_access root ~write:true loc;
          visit_rest [ l ]
        | None ->
          note_ident loc lid;
          visit_rest [])
      | _ ->
        note_ident loc lid;
        visit_rest []
    and iter_shim =
      (* Route the default iterator's recursive calls back through [expr]
         so guard state and classification stay live in subtrees we have
         no special case for. *)
      let default = Ast_iterator.default_iterator in
      { default with expr = (fun _ e -> expr e) }
    in
    expr body
  in
  (* Walk the structure, entering submodules with an extended scope. *)
  let rec structure ~inner (items : Parsetree.structure) =
    List.iter (item ~inner) items
  and item ~inner (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = name; _ } when is_function vb.pvb_expr ->
            let self = match inner with m :: _ -> m | [] -> scope_module in
            let key = self ^ "." ^ name in
            (match SMap.find_opt key !funcs with
            | Some fn -> walk_function ~scope:(scope_of inner) fn (peel vb.pvb_expr)
            | None -> ())
          | _ -> ())
        vbs
    | Pstr_module mb -> (
      match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
      | Some name, Pmod_structure str -> structure ~inner:(name :: inner) str
      | _ -> ())
    | _ -> ()
  in
  structure ~inner:[] str

(* Collect pass-1a names for one module (and its submodules). *)
let names_of_structure ~mutable_fields ~scope_module str =
  let acc = ref SMap.empty in
  let get m =
    match SMap.find_opt m !acc with
    | Some mi -> mi
    | None -> { mi_roots = SSet.empty; mi_funcs = SSet.empty }
  in
  let add_root m name = acc := SMap.add m { (get m) with mi_roots = SSet.add name (get m).mi_roots } !acc in
  let add_func m name = acc := SMap.add m { (get m) with mi_funcs = SSet.add name (get m).mi_funcs } !acc in
  let roots = ref [] in
  let rec structure ~self (items : Parsetree.structure) = List.iter (item ~self) items
  and item ~self (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = name; _ } -> (
            match root_kind_of_expr ~mutable_fields vb.pvb_expr with
            | Some kind ->
              add_root self name;
              roots :=
                { r_key = self ^ "." ^ name; r_kind = kind; r_pos = pos_of vb.pvb_pat.ppat_loc }
                :: !roots
            | None -> if is_function vb.pvb_expr then add_func self name)
          | _ -> ())
        vbs
    | Pstr_module mb -> (
      match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
      | Some name, Pmod_structure str -> structure ~self:name str
      | _ -> ())
    | _ -> ()
  in
  structure ~self:scope_module str;
  (!acc, !roots)

(* ---- the driver: parse + both passes ---- *)

let parse_impl ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Parse.implementation lexbuf

let parse_intf ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Parse.interface lexbuf

let analyze files =
  let impls = List.filter (fun (p, _) -> Filename.check_suffix p ".ml") files in
  let intfs = List.filter (fun (p, _) -> Filename.check_suffix p ".mli") files in
  let parse_errors = ref [] in
  let parsed =
    List.filter_map
      (fun (path, source) ->
        match parse_impl ~path source with
        | ast -> Some (path, source, ast)
        | exception exn ->
          let line, col =
            match exn with
            | Syntaxerr.Error e ->
              let p = (Syntaxerr.location_of_error e).Location.loc_start in
              (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
            | _ -> (1, 0)
          in
          parse_errors :=
            { file = path; line; col; rule = rule_parse_error;
              msg = "file does not parse as an OCaml implementation" } :: !parse_errors;
          None)
      impls
  in
  let mli_facts =
    List.filter_map
      (fun (path, source) ->
        match parse_intf ~path source with
        | sg -> Some (module_of_path path, mli_facts_of_signature sg)
        | exception _ -> None)
      intfs
  in
  (* Shared set of mutable record field names (for root detection). *)
  let mutable_fields =
    List.fold_left
      (fun acc (_, _, ast) -> SSet.union acc (mutable_fields_of_structure ast))
      SSet.empty parsed
  in
  (* Pass 1a: names. *)
  let mods = ref SMap.empty and all_roots = ref [] in
  List.iter
    (fun (path, _, ast) ->
      let scope_module = module_of_path path in
      let names, roots = names_of_structure ~mutable_fields ~scope_module ast in
      SMap.iter
        (fun m mi ->
          let merged =
            match SMap.find_opt m !mods with
            | Some prev ->
              { mi_roots = SSet.union prev.mi_roots mi.mi_roots;
                mi_funcs = SSet.union prev.mi_funcs mi.mi_funcs }
            | None -> mi
          in
          mods := SMap.add m merged !mods)
        names;
      all_roots := roots @ !all_roots)
    parsed;
  let roots =
    List.fold_left (fun acc r -> SMap.add r.r_key r acc) SMap.empty !all_roots
  in
  (* Function table, exported set. *)
  let funcs = ref SMap.empty and exported = ref SSet.empty in
  List.iter
    (fun (path, _, ast) ->
      let scope_module = module_of_path path in
      let base = Filename.basename path in
      let entry_file = SSet.mem base entry_files in
      let mf = List.assoc_opt scope_module mli_facts in
      let names, _ = names_of_structure ~mutable_fields ~scope_module ast in
      SMap.iter
        (fun m mi ->
          SSet.iter
            (fun name ->
              let key = m ^ "." ^ name in
              let is_exported =
                match mf with None -> true | Some f -> SSet.mem name f.mf_values
              in
              if is_exported then exported := SSet.add key !exported;
              funcs :=
                SMap.add key
                  {
                    fn_key = key;
                    fn_module = m;
                    fn_name = name;
                    fn_pos = { p_file = path; p_line = 0; p_col = 0 };
                    fn_accesses = [];
                    fn_refs = [];
                    fn_entry = entry_file;
                    fn_agets = [];
                    fn_asets = [];
                  }
                  !funcs)
            mi.mi_funcs)
        names)
    parsed;
  (* Pass 1b: summaries. *)
  let outbox_sites = ref [] in
  List.iter
    (fun (path, _, ast) ->
      let scope_module = module_of_path path in
      summarize_module ~mods:!mods ~scope_module ast ~funcs ~outbox_sites)
    parsed;
  let exposed_mutable =
    List.concat_map
      (fun (m, f) -> List.map (fun (ty, flds) -> (m ^ "." ^ ty, flds)) f.mf_mutable_records)
      mli_facts
  in
  {
    roots;
    funcs = !funcs;
    exported = !exported;
    exposed_mutable;
    outbox_sites = !outbox_sites;
    parse_errors = !parse_errors;
    sources = List.map (fun (p, s, _) -> (p, s)) parsed;
  }

(* ---- pass 2: closures ---- *)

(* Taint: functions reachable from lane entries along reference edges. *)
let taint_closure a =
  let tainted = ref SSet.empty in
  let rec visit key =
    if not (SSet.mem key !tainted) then begin
      tainted := SSet.add key !tainted;
      match SMap.find_opt key a.funcs with
      | Some fn -> List.iter (fun r -> visit r.fr_callee) fn.fn_refs
      | None -> ()
    end
  in
  SMap.iter (fun key fn -> if fn.fn_entry then visit key) a.funcs;
  !tainted

(* Guard environments: [None] is Top (never referenced — effectively any
   guard); exported functions and lane entries start, and stay, empty. *)
let guard_envs a =
  let incoming =
    SMap.fold
      (fun _ fn acc ->
        List.fold_left
          (fun acc r ->
            let prev = try SMap.find r.fr_callee acc with Not_found -> [] in
            SMap.add r.fr_callee ((fn.fn_key, r.fr_guards) :: prev) acc)
          acc fn.fn_refs)
      a.funcs SMap.empty
  in
  let env = ref SMap.empty in
  let get key = try SMap.find key !env with Not_found -> None in
  SMap.iter
    (fun key fn ->
      if fn.fn_entry || SSet.mem key a.exported then env := SMap.add key (Some SSet.empty) !env)
    a.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    SMap.iter
      (fun key fn ->
        if not (fn.fn_entry || SSet.mem key a.exported) then begin
          let meet =
            List.fold_left
              (fun acc (caller, site_guards) ->
                match get caller with
                | None -> acc (* Top caller contributes nothing yet *)
                | Some caller_env ->
                  let g = SSet.union site_guards caller_env in
                  (match acc with None -> Some g | Some prev -> Some (SSet.inter prev g)))
              None
              (try SMap.find key incoming with Not_found -> [])
          in
          match meet with
          | None -> ()
          | Some g ->
            if get key <> Some g then begin
              env := SMap.add key (Some g) !env;
              changed := true
            end
        end)
      a.funcs
  done;
  get

(* ---- the report ---- *)

let mk pos rule msg = { file = pos.p_file; line = pos.p_line; col = pos.p_col; rule; msg }

let raw_findings a =
  let tainted = taint_closure a in
  let env = guard_envs a in
  (* Effective guards of an access in [fn]: site guards plus everything
     the guard-environment fixpoint proved [fn] is always called under.
     Top environment = dead code = never executes: treat as guarded. *)
  let effective fn guards =
    match env fn.fn_key with None -> None | Some e -> Some (SSet.union guards e)
  in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* Per-root site table: (function, access, effective guards). *)
  let sites_of root_key =
    SMap.fold
      (fun _ fn acc ->
        List.fold_left
          (fun acc ac ->
            if ac.ac_root = root_key then
              match effective fn ac.ac_guards with
              | None -> acc
              | Some g -> (fn, ac, g) :: acc
            else acc)
          acc fn.fn_accesses)
      a.funcs []
  in
  SMap.iter
    (fun key root ->
      match root.r_kind with
      | Lock -> ()
      | Atomic ->
        (* Lane-reachable get->set sequences on the same atomic in one
           function, with no mutex common to both: lost updates. *)
        SMap.iter
          (fun _ fn ->
            if SSet.mem fn.fn_key tainted then
              match env fn.fn_key with
              | None -> ()
              | Some e ->
                List.iter
                  (fun (set_root, set_guards, pos) ->
                    if set_root = key then
                      let gets =
                        List.filter_map
                          (fun (r, g) -> if r = key then Some (SSet.union g e) else None)
                          fn.fn_agets
                      in
                      if
                        gets <> []
                        && not
                             (List.exists
                                (fun g -> not (SSet.is_empty (SSet.inter g (SSet.union set_guards e))))
                                gets)
                      then
                        add
                          (mk pos rule_rmw
                             (Printf.sprintf
                                "Atomic.get %s ... Atomic.set %s in %s loses concurrent updates; use \
                                 fetch_and_add/compare_and_set or hold one lock around both"
                                key key fn.fn_key)))
                  fn.fn_asets)
          a.funcs
      | Plain desc ->
        let sites = sites_of key in
        let lane_sites = List.filter (fun (fn, _, _) -> SSet.mem fn.fn_key tainted) sites in
        if lane_sites <> [] then begin
          let writes = List.filter (fun (_, ac, _) -> ac.ac_write) sites in
          if writes <> [] then begin
            let guarded_writes = List.filter (fun (_, _, g) -> not (SSet.is_empty g)) writes in
            if guarded_writes = [] then begin
              let via =
                List.fold_left
                  (fun acc (fn, _, _) ->
                    match acc with
                    | None -> Some fn.fn_key
                    | Some b -> if String.compare fn.fn_key b < 0 then Some fn.fn_key else Some b)
                  None lane_sites
              in
              add
                (mk root.r_pos rule_bare
                   (Printf.sprintf
                      "%s (%s) is shard-lane reachable (via %s) with no Atomic, mutex or outbox \
                       protection"
                      key desc
                      (match via with Some v -> v | None -> "?")))
            end
            else begin
              let common =
                List.fold_left
                  (fun acc (_, _, g) -> match acc with None -> Some g | Some p -> Some (SSet.inter p g))
                  None guarded_writes
              in
              let common = match common with Some c -> c | None -> SSet.empty in
              let lock_name =
                match SSet.min_elt_opt common with
                | Some l -> l
                | None -> (
                  match guarded_writes with
                  | (_, _, g) :: _ -> ( match SSet.min_elt_opt g with Some l -> l | None -> "?")
                  | [] -> "?")
              in
              (* Bare writes while other writes take a lock. *)
              List.iter
                (fun (fn, ac, g) ->
                  if SSet.is_empty g then
                    add
                      (mk ac.ac_pos rule_guard
                         (Printf.sprintf "%s is written under %s elsewhere but bare in %s" key
                            lock_name fn.fn_key)))
                writes;
              (* Every write guarded by one common lock: lane reads must
                 take it too, or they observe torn/stale structure. *)
              if not (SSet.is_empty common) then
                List.iter
                  (fun (fn, ac, g) ->
                    if (not ac.ac_write) && SSet.is_empty (SSet.inter g common) then
                      add
                        (mk ac.ac_pos rule_guard
                           (Printf.sprintf
                              "%s is guarded by %s at every write but read bare in lane code (%s)"
                              key lock_name fn.fn_key)))
                  lane_sites
            end
          end
        end)
    a.roots;
  List.iter
    (fun (pos, name) ->
      add
        (mk pos rule_outbox
           (Printf.sprintf
              "%s outside the engine internals bypasses the window outbox protocol; cross-lane \
               events must go through Engine.schedule"
              name)))
    a.outbox_sites;
  !findings @ a.parse_errors

(* ---- suppressions ---- *)

let findings a =
  let raw = raw_findings a in
  (* Apply inline annotations file by file — including files with no
     findings, so stale annotations surface. *)
  List.concat_map
    (fun (path, source) ->
      let here = List.filter (fun f -> f.file = path) raw in
      let suppressions = Suppress.scan_annotations ~tool:"race" source in
      Suppress.apply_inline ~tool:"race" ~path ~suppressions here)
    a.sources
  @ List.filter (fun f -> not (List.mem_assoc f.file a.sources)) raw

(* ---- summaries CSV ---- *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let summaries a =
  let tainted = taint_closure a in
  let env = guard_envs a in
  let b = Buffer.create 4096 in
  Buffer.add_string b "kind,module,name,detail,lane,guard_env,reads,writes,calls\n";
  let join set = String.concat ";" (SSet.elements set) in
  let sorted_keys m = SMap.fold (fun k _ acc -> k :: acc) m [] |> List.sort String.compare in
  List.iter
    (fun key ->
      let r = SMap.find key a.roots in
      let kind =
        match r.r_kind with Atomic -> "atomic" | Lock -> "lock" | Plain d -> d
      in
      Buffer.add_string b
        (Printf.sprintf "root,%s,%s,%s,,,,,\n"
           (csv_escape (List.hd (String.split_on_char '.' key)))
           (csv_escape (List.nth (String.split_on_char '.' key) 1))
           (csv_escape kind)))
    (sorted_keys a.roots);
  List.iter
    (fun (ty, fields) ->
      Buffer.add_string b
        (Printf.sprintf "exposed-type,%s,%s,%s,,,,,\n"
           (csv_escape (List.hd (String.split_on_char '.' ty)))
           (csv_escape (List.nth (String.split_on_char '.' ty) 1))
           (csv_escape (String.concat ";" fields))))
    (List.sort compare a.exposed_mutable);
  List.iter
    (fun key ->
      let fn = SMap.find key a.funcs in
      let reads, writes =
        List.fold_left
          (fun (r, w) ac -> if ac.ac_write then (r, SSet.add ac.ac_root w) else (SSet.add ac.ac_root r, w))
          (SSet.empty, SSet.empty) fn.fn_accesses
      in
      let calls = List.fold_left (fun s r -> SSet.add r.fr_callee s) SSet.empty fn.fn_refs in
      let envs = match env key with None -> "top" | Some e -> join e in
      Buffer.add_string b
        (Printf.sprintf "function,%s,%s,%s,%s,%s,%s,%s,%s\n" (csv_escape fn.fn_module)
           (csv_escape fn.fn_name)
           (if fn.fn_entry then "entry" else "")
           (if SSet.mem key tainted then "lane" else "")
           (csv_escape envs) (csv_escape (join reads)) (csv_escape (join writes))
           (csv_escape (join calls))))
    (sorted_keys a.funcs);
  Buffer.contents b

(* ---- driving ---- *)

let rec ocaml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> ocaml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then [ path ]
  else []

let compare_findings = Suppress.compare_findings

let pp_finding = Suppress.pp_finding

let run ?allowlist ?summaries_out ~paths () =
  let files =
    List.concat_map ocaml_files_under paths
    |> List.map (fun p -> (p, In_channel.with_open_text p In_channel.input_all))
  in
  let a = analyze files in
  (match summaries_out with
  | Some out -> Out_channel.with_open_text out (fun oc -> Out_channel.output_string oc (summaries a))
  | None -> ());
  let fs = findings a in
  List.sort compare_findings (Suppress.apply_allowlist ~allowlist fs)
