(* CLI for the domain-safety race check.

   Usage: racecheck_main [--allowlist FILE] [--summaries-out FILE] PATH...

   Every PATH is a .ml/.mli file or a directory walked recursively;
   implementations are analysed, interfaces refine export and exposure
   facts.  Findings go to stdout, one per line, machine-readable:

     file:line:col: [rule-id] message

   --summaries-out dumps the per-function effect-summary table (plus the
   mutable-root and exposed-mutable-type inventories) as CSV, for
   debugging the analysis and for eyeballing what lane code touches.

   Exit status: 0 clean, 1 findings, 2 usage error. *)

module Racecheck = Terradir_racecheck.Racecheck

let () =
  let allowlist = ref None and summaries_out = ref None and paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allowlist" :: file :: rest ->
      allowlist := Some file;
      parse rest
    | "--summaries-out" :: file :: rest ->
      summaries_out := Some file;
      parse rest
    | (("--allowlist" | "--summaries-out") as opt) :: [] ->
      Printf.eprintf "racecheck: %s needs a file argument\n" opt;
      exit 2
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf
        "racecheck: unknown option %s\nusage: racecheck_main [--allowlist FILE] [--summaries-out \
         FILE] PATH...\n"
        arg;
      exit 2
    | path :: rest ->
      paths := path :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then begin
    prerr_endline "usage: racecheck_main [--allowlist FILE] [--summaries-out FILE] PATH...";
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "racecheck: no such path %s\n" p;
        exit 2
      end)
    !paths;
  let findings =
    Racecheck.run ?allowlist:!allowlist ?summaries_out:!summaries_out ~paths:(List.rev !paths) ()
  in
  List.iter (Racecheck.pp_finding stdout) findings;
  if findings <> [] then begin
    Printf.eprintf "racecheck: %d finding(s)\n" (List.length findings);
    exit 1
  end
