(* Minimal JSON reader — the image carries no JSON library, and the trace
   checker only needs to read back what the exporter wrote plus enough of
   the grammar to reject malformed output loudly.  Full RFC 8259 value
   syntax: objects, arrays, strings with every escape (\uXXXX including
   surrogate pairs, decoded to UTF-8), numbers, true/false/null.  No
   streaming: traces of interest fit in memory. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; msg : string }

let fail pos msg = raise (Parse_error { pos; msg })

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st.pos (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos ("expected " ^ word)

let hex_digit pos = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> fail pos "bad \\u escape"

let hex4 st =
  if st.pos + 4 > String.length st.src then fail st.pos "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v * 16) + hex_digit (st.pos + i) st.src.[st.pos + i]
  done;
  st.pos <- st.pos + 4;
  !v

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st.pos "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let cp = hex4 st in
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            (* high surrogate: a \uDC00-\uDFFF pair must follow *)
            expect st '\\';
            expect st 'u';
            let lo = hex4 st in
            if lo < 0xDC00 || lo > 0xDFFF then fail st.pos "unpaired surrogate";
            add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if cp >= 0xDC00 && cp <= 0xDFFF then fail st.pos "unpaired surrogate"
          else add_utf8 buf cp
        | _ -> fail (st.pos - 1) "bad escape character");
        go ())
    | Some c when Char.code c < 0x20 -> fail st.pos "raw control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let consume_while p =
    let rec go () =
      match peek st with
      | Some c when p c ->
        advance st;
        go ()
      | _ -> ()
    in
    go ()
  in
  if peek st = Some '-' then advance st;
  consume_while (function '0' .. '9' -> true | _ -> false);
  if peek st = Some '.' then begin
    advance st;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail start "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' -> parse_object st
  | Some '[' -> parse_array st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character '%c'" c)

and parse_object st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec go () =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        go ()
      | Some '}' -> advance st
      | _ -> fail st.pos "expected ',' or '}'"
    in
    go ();
    Obj (List.rev !fields)
  end

and parse_array st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    Arr []
  end
  else begin
    let items = ref [] in
    let rec go () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        go ()
      | Some ']' -> advance st
      | _ -> fail st.pos "expected ',' or ']'"
    in
    go ();
    Arr (List.rev !items)
  end

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st.pos "trailing garbage after JSON value";
  v

(* ---- accessors ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_string = function Str s -> Some s | _ -> None
