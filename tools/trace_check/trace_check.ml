(* Chrome trace-event shape validator.

   Checks a trace against the subset of the trace-event format that both
   chrome://tracing and Perfetto require to render it (the format spec is
   permissive; the *viewers* are not):

   - top level is an object with a "traceEvents" array (the bare-array
     form is also legal and accepted);
   - every event is an object with a one-character "ph" and a numeric
     "pid"; every phase except metadata "M" also needs a numeric "ts" >= 0;
   - complete events "X" need "dur" >= 0;
   - nestable async "b"/"e" need a string "id" and "cat", every "e" must
     follow a matching "b" (file order), and every (cat, id) key must end
     balanced — an unmatched pair renders as an open-ended smear;
   - instants "i" with a scope "s" must use a known scope (t/p/g).

   Used by test/test_obs.ml on in-process traces and by the CI trace-smoke
   job on a trace written by terradir_sim --trace. *)

type stats = {
  events : int;  (** total events, metadata included *)
  by_phase : (string * int) list;  (** phase -> count, sorted by phase *)
  tracks : int;  (** distinct (pid, tid) pairs *)
  async_pairs : int;  (** balanced nestable-async (cat, id) keys *)
}

let known_phases =
  [ "B"; "E"; "X"; "i"; "I"; "b"; "e"; "n"; "s"; "t"; "f"; "M"; "C"; "P" ]

let validate_json json =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let by_phase : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let tracks : (float * float, unit) Hashtbl.t = Hashtbl.create 64 in
  (* (cat, id) -> open "b" count; every key touched stays in the table so
     balanced pairs can be counted at the end *)
  let async_open : (string * string, int) Hashtbl.t = Hashtbl.create 256 in
  let check_event i ev =
    match ev with
    | Json.Obj _ -> (
      let num key = Option.bind (Json.member key ev) Json.to_float in
      let str key = Option.bind (Json.member key ev) Json.to_string in
      match str "ph" with
      | None -> err "event %d: missing string \"ph\"" i
      | Some ph ->
        Hashtbl.replace by_phase ph (1 + Option.value ~default:0 (Hashtbl.find_opt by_phase ph));
        if not (List.mem ph known_phases) then err "event %d: unknown phase %S" i ph;
        (match num "pid" with
        | None -> err "event %d (ph %s): missing numeric \"pid\"" i ph
        | Some pid ->
          let tid = Option.value ~default:0.0 (num "tid") in
          if tid < 0.0 then err "event %d (ph %s): negative tid" i ph;
          Hashtbl.replace tracks (pid, tid) ());
        (match num "ts" with
        | Some ts when ts < 0.0 -> err "event %d (ph %s): negative ts" i ph
        | Some _ -> ()
        | None -> if ph <> "M" then err "event %d (ph %s): missing numeric \"ts\"" i ph);
        (match ph with
        | "X" -> (
          match num "dur" with
          | None -> err "event %d: complete event without numeric \"dur\"" i
          | Some d when d < 0.0 -> err "event %d: negative \"dur\"" i
          | Some _ -> ())
        | "b" | "e" -> (
          match (str "cat", str "id") with
          | Some cat, Some id ->
            let key = (cat, id) in
            let open_count = Option.value ~default:0 (Hashtbl.find_opt async_open key) in
            if ph = "b" then Hashtbl.replace async_open key (open_count + 1)
            else if open_count = 0 then
              err "event %d: \"e\" for (%s, %s) with no open \"b\"" i cat id
            else Hashtbl.replace async_open key (open_count - 1)
          | _ -> err "event %d: nestable async %S without string \"cat\" and \"id\"" i ph)
        | "i" -> (
          match str "s" with
          | Some ("t" | "p" | "g") | None -> ()
          | Some s -> err "event %d: instant with unknown scope %S" i s)
        | _ -> ()))
    | _ -> err "event %d: not an object" i
  in
  let events =
    match json with
    | Json.Arr evs -> Some evs
    | Json.Obj _ -> (
      match Json.member "traceEvents" json with
      | Some (Json.Arr evs) -> Some evs
      | Some _ ->
        err "\"traceEvents\" is not an array";
        None
      | None ->
        err "top-level object has no \"traceEvents\"";
        None)
    | _ ->
      err "top level is neither an object nor an array";
      None
  in
  let n_events =
    match events with
    | None -> 0
    | Some evs ->
      List.iteri check_event evs;
      List.length evs
  in
  Hashtbl.fold
    (fun (cat, id) open_count acc ->
      if open_count > 0 then
        Printf.sprintf "unclosed nestable async pair (%s, %s): %d \"b\" without \"e\"" cat id
          open_count
        :: acc
      else acc)
    async_open []
  |> List.sort String.compare
  |> List.iter (fun m -> errors := m :: !errors);
  match !errors with
  | [] ->
    Ok
      {
        events = n_events;
        by_phase =
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            (Hashtbl.fold (fun k n acc -> (k, n) :: acc) by_phase []);
        tracks = Hashtbl.length tracks;
        async_pairs = Hashtbl.length async_open;
      }
  | errs -> Error (List.rev errs)

let validate source =
  match Json.parse source with
  | json -> validate_json json
  | exception Json.Parse_error { pos; msg } ->
    Error [ Printf.sprintf "JSON parse error at byte %d: %s" pos msg ]
