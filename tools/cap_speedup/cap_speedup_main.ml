(* Parallel-capacity speedup check: compare two capacity-bench reports
   (bench/capacity.exe output) and fail unless the second ran at least
   [--min-speedup] times the first's events_per_sec.

   Usage: cap_speedup_main [--min-speedup X] [--max-rss-kb N] BASELINE.json PARALLEL.json

   CI runs the capacity scenario once with 1 engine domain and once with 4,
   then holds the pair to the scaling floor.  The check also re-asserts the
   determinism contract on the side: the simulation fields of the two
   reports (events_executed, injected, resolved, dropped, replicas_created)
   must be identical — a speedup bought by diverging trajectories is a bug,
   not a result.

   [--max-rss-kb N] additionally holds BOTH reports' peak_rss_kb under the
   ceiling — the memory-footprint gate the flat-store/pooling work is held
   to.  A null peak_rss_kb (non-Linux host) skips the check loudly rather
   than passing silently.

   Exit status: 0 ok, 1 speedup below floor, trajectories diverged, or RSS
   over the ceiling, 2 usage/parse error. *)

module Json = Terradir_trace_check.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("cap_speedup: " ^ s); exit 2) fmt

(* The simulation fields that must match byte-for-byte across domain
   counts.  Integer-valued, so float equality is exact. *)
let determinism_fields =
  [ "servers"; "nodes"; "events_executed"; "injected"; "resolved"; "dropped"; "replicas_created" ]

let read_capacity path =
  let source =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> die "%s" e
  in
  let json =
    try Json.parse source
    with Json.Parse_error { pos; msg } -> die "%s: parse error at byte %d: %s" path pos msg
  in
  match Json.member "capacity" json with
  | Some cap -> cap
  | None -> die "%s: no capacity object (expected bench/capacity.exe output)" path

let num path cap field =
  match Json.member field cap with
  | Some (Json.Num n) -> n
  | _ -> die "%s: capacity field %s missing or not a number" path field

(* [Some kb] when the report carries a number, [None] on JSON null (the
   bench writes null where /proc/self/status is unavailable). *)
let rss_kb path cap =
  match Json.member "peak_rss_kb" cap with
  | Some (Json.Num n) -> Some (int_of_float n)
  | Some Json.Null -> None
  | _ -> die "%s: capacity field peak_rss_kb missing" path

let () =
  let min_speedup = ref 2.0 and max_rss_kb = ref None and files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--min-speedup" :: x :: rest -> (
      match float_of_string_opt x with
      | Some s when s > 0.0 ->
        min_speedup := s;
        parse rest
      | _ -> die "--min-speedup needs a positive number")
    | "--min-speedup" :: [] -> die "--min-speedup needs an argument"
    | "--max-rss-kb" :: x :: rest -> (
      match int_of_string_opt x with
      | Some n when n > 0 ->
        max_rss_kb := Some n;
        parse rest
      | _ -> die "--max-rss-kb needs a positive integer")
    | "--max-rss-kb" :: [] -> die "--max-rss-kb needs an argument"
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> die "unknown option %s" arg
    | path :: rest ->
      files := path :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_file, par_file =
    match List.rev !files with
    | [ b; p ] -> (b, p)
    | _ ->
      die "usage: cap_speedup_main [--min-speedup X] [--max-rss-kb N] BASELINE.json PARALLEL.json"
  in
  let base = read_capacity base_file and par = read_capacity par_file in
  let divergent =
    List.filter
      (fun field -> num base_file base field <> num par_file par field)
      determinism_fields
  in
  List.iter
    (fun field ->
      Printf.eprintf "cap_speedup: %s differs: %g (%s) vs %g (%s)\n" field
        (num base_file base field) base_file (num par_file par field) par_file)
    divergent;
  let base_eps = num base_file base "events_per_sec"
  and par_eps = num par_file par "events_per_sec" in
  if base_eps <= 0.0 then die "%s: non-positive events_per_sec" base_file;
  let speedup = par_eps /. base_eps in
  Printf.printf
    "capacity speedup: %.0f -> %.0f events/sec (%.2fx, K=%g vs K=%g, floor %.2fx)\n"
    base_eps par_eps speedup
    (num base_file base "engine_domains")
    (num par_file par "engine_domains")
    !min_speedup;
  let rss_over =
    match !max_rss_kb with
    | None -> []
    | Some ceiling ->
      List.filter_map
        (fun (file, cap) ->
          match rss_kb file cap with
          | None ->
            Printf.printf "cap_speedup: %s: peak_rss_kb is null (non-Linux host), not checked\n"
              file;
            None
          | Some kb ->
            Printf.printf "cap_speedup: %s: peak RSS %d kB (ceiling %d kB)\n" file kb ceiling;
            if kb > ceiling then Some (file, kb) else None)
        [ (base_file, base); (par_file, par) ]
  in
  if divergent <> [] then begin
    prerr_endline "cap_speedup: FAIL — simulation trajectories diverged across domain counts";
    exit 1
  end;
  if speedup < !min_speedup then begin
    Printf.eprintf "cap_speedup: FAIL — speedup %.2fx below the %.2fx floor\n" speedup
      !min_speedup;
    exit 1
  end;
  (match (rss_over, !max_rss_kb) with
  | (file, kb) :: _, Some ceiling ->
    Printf.eprintf "cap_speedup: FAIL — %s peak RSS %d kB over the %d kB ceiling\n" file kb
      ceiling;
    exit 1
  | _ -> ());
  print_endline "cap_speedup: ok"
