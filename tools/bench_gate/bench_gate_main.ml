(* Bench regression gate: compare a fresh BENCH_results.json against the
   committed BENCH_baseline.json and fail on slowdowns in the tracked
   micro benchmarks AND in the figure-level engine throughput
   (events_per_sec per figure, the capacity figure included).

   Usage: bench_gate_main [--tolerance PCT] [--absolute] BASELINE CURRENT

   Raw ns/run is machine-dependent — a committed baseline meets differently
   sized CI runners — so by default every per-bench ratio
   [current/baseline] is normalized by the geometric mean of all tracked
   ratios first.  That cancels the machine-speed factor and leaves the
   quantity the gate is actually about: did one operation get slower
   RELATIVE to the rest of the suite.  [--absolute] skips the
   normalization (the right mode when baseline and current come from the
   same machine, e.g. a local before/after check).

   Exit status: 0 within tolerance, 1 regression(s), 2 usage/parse error. *)

module Json = Terradir_trace_check.Json

(* The hot-path operations this PR's scaling work is held to.  Benches
   outside this list (and histogram summaries) are informational only:
   they may come and go without tripping the gate. *)
let tracked =
  [
    "routing_decide";
    "routing_decide_full_store";
    "replication_trigger";
    "tree_distance";
    "node_map_merge";
    "node_map_merge_subsumed";
    "node_map_of_entries";
    "bloom_mem_negative";
    "cache_insert";
    "engine_schedule_run";
  ]

(* Figure-level engine throughput (events_per_sec) — the macro numbers the
   scaling work is about; the capacity figure is the headline one.  Same
   skip rule as micro benches: a figure absent from the baseline has
   nothing to regress against. *)
let tracked_figures =
  [
    "table1";
    "fig3";
    "fig4";
    "fig5";
    "fig6";
    "fig7";
    "fig8";
    "fig9";
    "rfact";
    "ablations";
    "hetero";
    "capacity";
  ]

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("bench_gate: " ^ s); exit 2) fmt

let load_json path =
  let source =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> die "%s" e
  in
  try Json.parse source
  with Json.Parse_error { pos; msg } -> die "%s: parse error at byte %d: %s" path pos msg

let read_micro path json =
  match Json.member "micro_ns_per_run" json with
  | Some (Json.Arr entries) ->
    List.filter_map
      (fun e ->
        match (Json.member "name" e, Json.member "ns_per_run" e) with
        | Some (Json.Str name), Some (Json.Num ns) -> Some (name, ns)
        | _ -> None)
      entries
  | _ -> die "%s: no micro_ns_per_run array (schema v2 expected)" path

(* [(id, value)] of one numeric [field] from the figures array.  Figures
   without the field are skipped rather than fatal: the array carries
   several numbers per entry, and each gate section reads only its own
   (older baselines may predate a field entirely). *)
let read_figure_field field path json =
  match Json.member "figures" json with
  | Some (Json.Arr entries) ->
    List.filter_map
      (fun e ->
        match (Json.member "id" e, Json.member field e) with
        | Some (Json.Str id), Some (Json.Num v) -> Some (id, v)
        | _ -> None)
      entries
  | _ -> die "%s: no figures array (schema v2 expected)" path

let read_figures = read_figure_field "events_per_sec"

(* Shared gating pass over one section of [(name, baseline, current, ratio)]
   cells, ratio oriented so > 1 means slower.  Prints every cell, returns
   the regressing names.  Each section is normalized by its OWN geomean —
   ns/run and events/sec respond to machine speed the same way, but mixing
   the two populations in one geomean would let a uniformly faster micro
   suite mask a uniformly slower figure suite. *)
let gate_section ~label ~unit ~tolerance ~absolute cells =
  let geomean =
    exp (List.fold_left (fun acc (_, _, _, r) -> acc +. log r) 0.0 cells
         /. float_of_int (List.length cells))
  in
  let norm = if absolute then 1.0 else geomean in
  Printf.printf "%s (%s, %s):\n" label unit
    (if absolute then "absolute" else Printf.sprintf "normalized by geomean ratio %.3f" geomean);
  List.filter_map
    (fun (name, b, c, r) ->
      let adjusted = r /. norm in
      let regressed = adjusted > 1.0 +. tolerance in
      Printf.printf "  %-26s %12.2f -> %12.2f %s  ratio %.3f (adj %.3f)  %s\n" name b c unit r
        adjusted
        (if regressed then "REGRESSION" else "ok");
      if regressed then Some name else None)
    cells

(* GC-pressure gate: words allocated per engine event, per figure.  Unlike
   ns/run and events/sec, allocation counts are machine-independent (the
   trajectory is deterministic), so this section always gates ABSOLUTE —
   no geomean normalization — and a cell regresses only when it is both
   >tolerance worse AND at least one whole word/event worse (near-zero
   baselines would otherwise turn measurement jitter into failures).
   Figures absent from the baseline, or with a zero baseline, are skipped:
   nothing to regress against. *)
let gate_words_section ~label ~tolerance cells =
  if cells = [] then begin
    Printf.printf "%s: no figures shared with baseline, skipping\n" label;
    []
  end
  else begin
    Printf.printf "%s (words/event, absolute):\n" label;
    List.filter_map
      (fun (name, b, c) ->
        let ratio = c /. b in
        let regressed = ratio > 1.0 +. tolerance && c -. b > 1.0 in
        Printf.printf "  %-26s %12.2f -> %12.2f words/event  ratio %.3f  %s\n" name b c ratio
          (if regressed then "REGRESSION" else "ok");
        if regressed then Some name else None)
      cells
  end

let words_cells ~field ~baseline_file ~baseline_json ~current_file ~current_json =
  let b = read_figure_field field baseline_file baseline_json
  and c = read_figure_field field current_file current_json in
  List.filter_map
    (fun id ->
      match (List.assoc_opt id b, List.assoc_opt id c) with
      | Some bv, Some cv when bv > 0.0 -> Some (id, bv, cv)
      | Some bv, None when bv > 0.0 ->
        die "%s: tracked figure %s missing %s from current results" current_file id field
      | _ -> None (* absent or zero in the baseline: nothing to regress against *))
    tracked_figures

let () =
  let tolerance = ref 0.10 and absolute = ref false and files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: pct :: rest -> (
      match float_of_string_opt pct with
      | Some p when p > 0.0 ->
        tolerance := p /. 100.0;
        parse rest
      | _ -> die "--tolerance needs a positive percentage")
    | "--tolerance" :: [] -> die "--tolerance needs a percentage argument"
    | "--absolute" :: rest ->
      absolute := true;
      parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> die "unknown option %s" arg
    | path :: rest ->
      files := path :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_file, current_file =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ -> die "usage: bench_gate_main [--tolerance PCT] [--absolute] BASELINE CURRENT"
  in
  let baseline_json = load_json baseline_file and current_json = load_json current_file in
  let micro_b = read_micro baseline_file baseline_json
  and micro_c = read_micro current_file current_json in
  let micro_cells =
    List.filter_map
      (fun name ->
        match (List.assoc_opt name micro_b, List.assoc_opt name micro_c) with
        | Some b, Some c when b > 0.0 -> Some (name, b, c, c /. b)
        | Some _, None -> die "%s: tracked bench %s missing from current results" current_file name
        | None, _ -> None (* not in the baseline yet: nothing to regress against *)
        | Some _, Some _ -> die "%s: bench %s has non-positive baseline" baseline_file name)
      tracked
  in
  if micro_cells = [] then
    die "no tracked benches shared between %s and %s" baseline_file current_file;
  let figures_b = read_figures baseline_file baseline_json
  and figures_c = read_figures current_file current_json in
  (* Throughput regression direction is inverted: LOWER events/sec is the
     slowdown.  Ratio baseline/current keeps > 1 = slower, so the same
     normalize-and-threshold machinery applies. *)
  let figure_cells =
    List.filter_map
      (fun id ->
        match (List.assoc_opt id figures_b, List.assoc_opt id figures_c) with
        | Some b, Some c when b > 0.0 && c > 0.0 -> Some (id, b, c, b /. c)
        | Some _, Some c when c <= 0.0 ->
          die "%s: figure %s has non-positive events_per_sec" current_file id
        | Some _, None -> die "%s: tracked figure %s missing from current results" current_file id
        | None, _ -> None (* not in the baseline yet: nothing to regress against *)
        | Some _, Some _ -> die "%s: figure %s has non-positive baseline" baseline_file id)
      tracked_figures
  in
  Printf.printf "bench gate: %s vs %s (tolerance %.0f%%)\n" current_file baseline_file
    (!tolerance *. 100.0);
  let micro_regressions =
    gate_section ~label:"micro benches" ~unit:"ns/run" ~tolerance:!tolerance
      ~absolute:!absolute micro_cells
  in
  let figure_regressions =
    if figure_cells = [] then begin
      (* Tolerated (an old baseline predating figure tracking) but loud:
         silence here would read as "figures gated" when they were not. *)
      Printf.printf "figure throughput: no tracked figures shared with baseline, skipping\n";
      []
    end
    else
      gate_section ~label:"figure throughput" ~unit:"events/s" ~tolerance:!tolerance
        ~absolute:!absolute figure_cells
  in
  let minor_regressions =
    gate_words_section ~label:"figure GC pressure (minor)" ~tolerance:!tolerance
      (words_cells ~field:"minor_words_per_event" ~baseline_file ~baseline_json
         ~current_file ~current_json)
  in
  let promoted_regressions =
    gate_words_section ~label:"figure GC pressure (promoted)" ~tolerance:!tolerance
      (words_cells ~field:"promoted_words_per_event" ~baseline_file ~baseline_json
         ~current_file ~current_json)
  in
  let regressions =
    micro_regressions @ figure_regressions @ minor_regressions @ promoted_regressions
  in
  if regressions <> [] then begin
    Printf.eprintf "bench_gate: %d tracked bench(es)/figure(s) slowed down more than %.0f%%: %s\n"
      (List.length regressions)
      (!tolerance *. 100.0)
      (String.concat ", " regressions);
    exit 1
  end;
  print_endline "bench gate: all tracked benches and figures within tolerance"
