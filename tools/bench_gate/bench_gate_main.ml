(* Bench regression gate: compare a fresh BENCH_results.json against the
   committed BENCH_baseline.json and fail on slowdowns in the tracked
   micro benchmarks.

   Usage: bench_gate_main [--tolerance PCT] [--absolute] BASELINE CURRENT

   Raw ns/run is machine-dependent — a committed baseline meets differently
   sized CI runners — so by default every per-bench ratio
   [current/baseline] is normalized by the geometric mean of all tracked
   ratios first.  That cancels the machine-speed factor and leaves the
   quantity the gate is actually about: did one operation get slower
   RELATIVE to the rest of the suite.  [--absolute] skips the
   normalization (the right mode when baseline and current come from the
   same machine, e.g. a local before/after check).

   Exit status: 0 within tolerance, 1 regression(s), 2 usage/parse error. *)

module Json = Terradir_trace_check.Json

(* The hot-path operations this PR's scaling work is held to.  Benches
   outside this list (and histogram summaries) are informational only:
   they may come and go without tripping the gate. *)
let tracked =
  [
    "routing_decide";
    "tree_distance";
    "node_map_merge";
    "node_map_merge_subsumed";
    "node_map_of_entries";
    "bloom_mem_negative";
    "cache_insert";
    "engine_schedule_run";
  ]

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("bench_gate: " ^ s); exit 2) fmt

let read_micro path =
  let source =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> die "%s" e
  in
  let json =
    try Json.parse source
    with Json.Parse_error { pos; msg } -> die "%s: parse error at byte %d: %s" path pos msg
  in
  match Json.member "micro_ns_per_run" json with
  | Some (Json.Arr entries) ->
    List.filter_map
      (fun e ->
        match (Json.member "name" e, Json.member "ns_per_run" e) with
        | Some (Json.Str name), Some (Json.Num ns) -> Some (name, ns)
        | _ -> None)
      entries
  | _ -> die "%s: no micro_ns_per_run array (schema v2 expected)" path

let () =
  let tolerance = ref 0.10 and absolute = ref false and files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: pct :: rest -> (
      match float_of_string_opt pct with
      | Some p when p > 0.0 ->
        tolerance := p /. 100.0;
        parse rest
      | _ -> die "--tolerance needs a positive percentage")
    | "--tolerance" :: [] -> die "--tolerance needs a percentage argument"
    | "--absolute" :: rest ->
      absolute := true;
      parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> die "unknown option %s" arg
    | path :: rest ->
      files := path :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_file, current_file =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ -> die "usage: bench_gate_main [--tolerance PCT] [--absolute] BASELINE CURRENT"
  in
  let baseline = read_micro baseline_file and current = read_micro current_file in
  let cells =
    List.filter_map
      (fun name ->
        match (List.assoc_opt name baseline, List.assoc_opt name current) with
        | Some b, Some c when b > 0.0 -> Some (name, b, c, c /. b)
        | Some _, None -> die "%s: tracked bench %s missing from current results" current_file name
        | None, _ -> None (* not in the baseline yet: nothing to regress against *)
        | Some _, Some _ -> die "%s: bench %s has non-positive baseline" baseline_file name)
      tracked
  in
  if cells = [] then die "no tracked benches shared between %s and %s" baseline_file current_file;
  let geomean =
    exp (List.fold_left (fun acc (_, _, _, r) -> acc +. log r) 0.0 cells
         /. float_of_int (List.length cells))
  in
  let norm = if !absolute then 1.0 else geomean in
  Printf.printf "bench gate: %s vs %s (tolerance %.0f%%, %s)\n" current_file baseline_file
    (!tolerance *. 100.0)
    (if !absolute then "absolute" else Printf.sprintf "normalized by geomean ratio %.3f" geomean);
  let regressions =
    List.filter
      (fun (name, b, c, r) ->
        let adjusted = r /. norm in
        let verdict = if adjusted > 1.0 +. !tolerance then "REGRESSION" else "ok" in
        Printf.printf "  %-26s %10.2f -> %10.2f ns/run  ratio %.3f (adj %.3f)  %s\n" name b c r
          adjusted verdict;
        adjusted > 1.0 +. !tolerance)
      cells
  in
  if regressions <> [] then begin
    Printf.eprintf "bench_gate: %d tracked bench(es) slowed down more than %.0f%%\n"
      (List.length regressions)
      (!tolerance *. 100.0);
    exit 1
  end;
  print_endline "bench gate: all tracked benches within tolerance"
