(* Resilience-report schema validator.

   Checks a "terradir-resilience-report" JSON document (written by
   Terradir_chaos.Report.to_json) for structural and arithmetic sanity:

   - schema/version tag, required metadata fields with sane ranges;
   - windows: non-empty, contiguous ([t_start] of window k+1 equals
     [t_end] of window k), uniform width [window_s], availability in
     [0, 1], all counts non-negative, alive <= servers;
   - events: times ascending (file order is fire order), inside the run;
   - recoveries: one per recovery-flagged event, [reconverged_s] null or
     at/after the recovery time and inside the run;
   - totals: non-negative, injected = resolved + dropped + unresolved,
     and each of injected/resolved/dropped equals the sum over windows.

   Dependency-free (reuses trace_check's hand-rolled JSON reader — the
   image carries no JSON library).  Used by test/test_chaos.ml in-process
   and by the CI chaos-smoke job on a report written by
   terradir_sim chaos --out. *)

module Json = Terradir_trace_check.Json

type stats = {
  windows : int;
  events : int;
  recoveries : int;
  reconverged : int;  (** recoveries with a finite reconvergence time *)
}

let eps = 1e-6

let validate_json json =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let num key obj = Option.bind (Json.member key obj) Json.to_float in
  let str key obj = Option.bind (Json.member key obj) Json.to_string in
  let require_num ~what key obj =
    match num key obj with
    | Some v -> v
    | None ->
      err "%s: missing numeric %S" what key;
      0.0
  in
  let require_count ~what key obj =
    let v = require_num ~what key obj in
    if Float.rem v 1.0 <> 0.0 || v < 0.0 then err "%s: %S must be a non-negative integer" what key;
    v
  in
  (match str "schema" json with
  | Some "terradir-resilience-report" -> ()
  | Some other -> err "schema: expected terradir-resilience-report, got %S" other
  | None -> err "schema: missing string field");
  (match num "version" json with
  | Some 1.0 -> ()
  | Some v -> err "version: expected 1, got %g" v
  | None -> err "version: missing numeric field");
  if str "scenario" json = None then err "scenario: missing string field";
  ignore (require_count ~what:"metadata" "workload_seed" json : float);
  let servers = require_count ~what:"metadata" "servers" json in
  let domains = require_count ~what:"metadata" "engine_domains" json in
  if domains < 1.0 then err "engine_domains: must be >= 1";
  let window_s = require_num ~what:"metadata" "window_s" json in
  if window_s <= 0.0 then err "window_s: must be positive";
  let duration_s = require_num ~what:"metadata" "duration_s" json in
  if duration_s <= 0.0 then err "duration_s: must be positive";
  (match Json.member "slo" json with
  | Some (Json.Obj _ as slo) ->
    if require_num ~what:"slo" "availability_drop" slo < 0.0 then
      err "slo: availability_drop must be >= 0";
    if require_num ~what:"slo" "p99_factor" slo < 1.0 then err "slo: p99_factor must be >= 1"
  | _ -> err "slo: missing object");
  (match Json.member "baseline" json with
  | Some Json.Null -> ()
  | Some (Json.Obj _ as base) ->
    if require_count ~what:"baseline" "windows" base < 1.0 then
      err "baseline: windows must be >= 1";
    let avail = require_num ~what:"baseline" "availability" base in
    if avail < 0.0 || avail > 1.0 then err "baseline: availability outside [0, 1]";
    if require_num ~what:"baseline" "p99_s" base < 0.0 then err "baseline: p99_s must be >= 0"
  | _ -> err "baseline: missing (object or null)");
  let run_start = ref 0.0 and run_end = ref 0.0 in
  let sum_issued = ref 0.0 and sum_resolved = ref 0.0 and sum_dropped = ref 0.0 in
  (match Json.member "windows" json with
  | Some (Json.Arr []) -> err "windows: empty array"
  | Some (Json.Arr ws) ->
    let prev_end = ref None in
    List.iteri
      (fun i w ->
        let what = Printf.sprintf "window %d" i in
        match w with
        | Json.Obj _ ->
          let t0 = require_num ~what "t_start" w and t1 = require_num ~what "t_end" w in
          if t1 <= t0 then err "%s: t_end must exceed t_start" what;
          if Float.abs (t1 -. t0 -. window_s) > eps then
            err "%s: width %g differs from window_s %g" what (t1 -. t0) window_s;
          (match !prev_end with
          | Some pe when Float.abs (pe -. t0) > eps ->
            err "%s: t_start %g does not continue previous t_end %g (gap or overlap)" what t0 pe
          | _ -> ());
          prev_end := Some t1;
          if i = 0 then run_start := t0;
          run_end := t1;
          let issued = require_count ~what "issued" w in
          let resolved = require_count ~what "resolved" w in
          let dropped = require_count ~what "dropped" w in
          sum_issued := !sum_issued +. issued;
          sum_resolved := !sum_resolved +. resolved;
          sum_dropped := !sum_dropped +. dropped;
          ignore (require_count ~what "replicas_created" w : float);
          ignore (require_count ~what "net_lost" w : float);
          ignore (require_count ~what "net_blocked" w : float);
          let alive = require_count ~what "alive" w in
          if alive > servers then err "%s: alive %g exceeds servers %g" what alive servers;
          let avail = require_num ~what "availability" w in
          if avail < 0.0 || avail > 1.0 then err "%s: availability outside [0, 1]" what;
          if issued > 0.0 && Float.abs (avail -. Float.min 1.0 (resolved /. issued)) > eps then
            err "%s: availability %g inconsistent with resolved/issued %g/%g" what avail resolved
              issued;
          if issued = 0.0 && avail <> 1.0 then err "%s: idle window must report availability 1" what;
          if require_num ~what "p99_s" w < 0.0 then err "%s: p99_s must be >= 0" what
        | _ -> err "%s: not an object" what)
      ws;
    if Float.abs (!run_end -. !run_start -. duration_s) > eps then
      err "windows: cover %g s but duration_s is %g" (!run_end -. !run_start) duration_s
  | _ -> err "windows: missing array");
  let recovery_events = ref 0 and nevents = ref 0 in
  (match Json.member "events" json with
  | Some (Json.Arr es) ->
    nevents := List.length es;
    let prev_t = ref neg_infinity in
    List.iteri
      (fun i e ->
        let what = Printf.sprintf "event %d" i in
        match e with
        | Json.Obj _ ->
          let t = require_num ~what "t" e in
          if t < !prev_t then err "%s: times must be ascending (fire order)" what;
          prev_t := t;
          if t < !run_start -. eps || t > !run_end +. eps then
            err "%s: t %g outside the run [%g, %g]" what t !run_start !run_end;
          if str "kind" e = None then err "%s: missing string \"kind\"" what;
          if str "detail" e = None then err "%s: missing string \"detail\"" what;
          (match Json.member "recovery" e with
          | Some (Json.Bool r) -> if r then incr recovery_events
          | _ -> err "%s: missing boolean \"recovery\"" what)
        | _ -> err "%s: not an object" what)
      es
  | _ -> err "events: missing array");
  let nrecoveries = ref 0 and nreconverged = ref 0 in
  (match Json.member "recoveries" json with
  | Some (Json.Arr rs) ->
    nrecoveries := List.length rs;
    if List.length rs <> !recovery_events then
      err "recoveries: %d entries but %d recovery-flagged events" (List.length rs)
        !recovery_events;
    List.iteri
      (fun i r ->
        let what = Printf.sprintf "recovery %d" i in
        match r with
        | Json.Obj _ -> (
          let t = require_num ~what "t" r in
          if str "kind" r = None then err "%s: missing string \"kind\"" what;
          match Json.member "reconverged_s" r with
          | Some Json.Null -> ()
          | Some (Json.Num at) ->
            incr nreconverged;
            if at < t then err "%s: reconverged_s %g precedes the recovery at %g" what at t;
            if at > !run_end +. eps then err "%s: reconverged_s %g outside the run" what at
          | _ -> err "%s: missing \"reconverged_s\" (number or null)" what)
        | _ -> err "%s: not an object" what)
      rs
  | _ -> err "recoveries: missing array");
  (match Json.member "totals" json with
  | Some (Json.Obj _ as totals) ->
    let what = "totals" in
    let injected = require_count ~what "injected" totals in
    let resolved = require_count ~what "resolved" totals in
    let dropped = require_count ~what "dropped" totals in
    let unresolved = require_count ~what "unresolved" totals in
    ignore (require_count ~what "replicas_created" totals : float);
    ignore (require_count ~what "net_lost" totals : float);
    ignore (require_count ~what "net_blocked" totals : float);
    if injected <> resolved +. dropped +. unresolved then
      err "totals: injected %g <> resolved %g + dropped %g + unresolved %g" injected resolved
        dropped unresolved;
    if injected <> !sum_issued then
      err "totals: injected %g differs from the window sum %g" injected !sum_issued;
    if resolved <> !sum_resolved then
      err "totals: resolved %g differs from the window sum %g" resolved !sum_resolved;
    if dropped <> !sum_dropped then
      err "totals: dropped %g differs from the window sum %g" dropped !sum_dropped
  | _ -> err "totals: missing object");
  match List.rev !errors with
  | [] ->
    let nwindows =
      match Json.member "windows" json with Some (Json.Arr ws) -> List.length ws | _ -> 0
    in
    Ok
      {
        windows = nwindows;
        events = !nevents;
        recoveries = !nrecoveries;
        reconverged = !nreconverged;
      }
  | errs -> Error errs

let validate source =
  match Json.parse source with
  | exception Json.Parse_error { pos; msg } ->
    Error [ Printf.sprintf "JSON parse error at offset %d: %s" pos msg ]
  | json -> validate_json json
