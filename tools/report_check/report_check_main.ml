(* CLI for the resilience-report checker.

   Usage: report_check_main FILE...

   Validates each file against the terradir-resilience-report schema (see
   report_check.ml) and prints a one-line summary per valid file.

   Exit status: 0 every file valid, 1 findings, 2 usage error. *)

module Check = Terradir_report_check.Report_check

let max_errors_shown = 25

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: report_check_main FILE...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun file ->
      if not (Sys.file_exists file) then begin
        Printf.eprintf "report_check: no such file %s\n" file;
        exit 2
      end;
      let source = In_channel.with_open_text file In_channel.input_all in
      match Check.validate source with
      | Ok { Check.windows; events; recoveries; reconverged } ->
        Printf.printf "%s: OK — %d windows, %d events, %d/%d recoveries reconverged\n" file
          windows events reconverged recoveries
      | Error errs ->
        failed := true;
        let shown = List.filteri (fun i _ -> i < max_errors_shown) errs in
        List.iter (fun e -> Printf.printf "%s: %s\n" file e) shown;
        let hidden = List.length errs - List.length shown in
        if hidden > 0 then Printf.printf "%s: ... and %d more\n" file hidden)
    files;
  if !failed then exit 1
