(* Lint fixture: exercises every rule of the determinism lint, plus the
   suppression machinery.  This file only has to PARSE — no dune stanza
   covers this directory, so it is never compiled.  The expected
   diagnostics live in expected.txt next door; the runtest rule in
   ../dune diffs the lint's output against it, so the line numbers here
   are load-bearing. *)

let table : (string, int) Hashtbl.t = Hashtbl.create 16

(* --- one unsuppressed violation per rule --- *)

let keys () = Hashtbl.fold (fun k _ acc -> k :: acc) table []
let pairs () = Hashtbl.to_seq table
let visit f = Hashtbl.iter f table
let cpu () = Sys.time ()
let wall () = Unix.gettimeofday ()
let dice () = Random.int 6
let sorted l = List.sort compare l
let same_handler () = (fun x -> x + 1) = (fun y -> y + 1)
let blob x = Marshal.to_string x []

(* --- clean constructions the lint must NOT flag --- *)

let keys_sorted () =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])

let keys_piped () = Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort String.compare
let drawn rng = Terradir_util.Splitmix.float rng 1.0
let int_sorted l = List.sort Int.compare l

(* --- suppression: justified annotation covers the next line --- *)

(* lint: ordered integer addition is commutative; order cannot reach the sum *)
let total () = Hashtbl.fold (fun _ v acc -> acc + v) table 0

(* --- suppression without a justification: finding survives, plus bad-annotation --- *)

(* lint: ordered *)
let keys_again () = Hashtbl.fold (fun k _ acc -> k :: acc) table []

(* --- stale suppression: nothing on this or the next line to cover --- *)

(* lint: wall-clock the timing code below was removed; annotation is stale *)
let nothing = 0

(* --- obs hook: unannotated record in protocol code, then a justified one --- *)

let hook obs qid = Obs.record obs ~server:0 (Event.Queue_enter { qid; attempt = 0 })

let hook_ok obs qid =
  (* lint: obs-in-hot-path spans-gated; fires once per enqueue *)
  Terradir_obs.Obs.record obs ~server:0 (Event.Queue_enter { qid; attempt = 0 })
