(* CLI for the determinism lint.

   Usage: lint_main [--allowlist FILE] PATH...

   Every PATH is a .ml file or a directory walked recursively.  Findings go
   to stdout, one per line, machine-readable:

     file:line:col: [rule-id] message

   Exit status: 0 clean, 1 findings, 2 usage error. *)

module Lint = Terradir_lint.Lint

let () =
  let allowlist = ref None and paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allowlist" :: file :: rest ->
      allowlist := Some file;
      parse rest
    | "--allowlist" :: [] ->
      prerr_endline "lint: --allowlist needs a file argument";
      exit 2
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "lint: unknown option %s\nusage: lint_main [--allowlist FILE] PATH...\n" arg;
      exit 2
    | path :: rest ->
      paths := path :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then begin
    prerr_endline "usage: lint_main [--allowlist FILE] PATH...";
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "lint: no such path %s\n" p;
        exit 2
      end)
    !paths;
  let findings = Lint.run ~allowlist:!allowlist ~paths:(List.rev !paths) in
  List.iter (Lint.pp_finding stdout) findings;
  if findings <> [] then begin
    Printf.eprintf "lint: %d finding(s)\n" (List.length findings);
    exit 1
  end
