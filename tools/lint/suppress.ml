(* Suppression machinery shared by the static-analysis tools (the
   determinism lint and the domain-safety race check).

   Both tools report [finding]s and both accept per-site suppressions
   with a recorded justification:

     - an inline annotation on the flagged line or the line above:
         (* <tool>: <rule> <justification> *)
     - an allowlist file with "path rule justification" lines, matching
       any scanned file whose path ends with [path].

   An annotation without a justification is itself an error
   (bad-annotation), and so is a suppression that no finding uses
   (unused-suppression) — stale justifications must not accumulate. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let rule_bad_annotation = "bad-annotation"
let rule_unused_suppression = "unused-suppression"

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp_finding oc f =
  Printf.fprintf oc "%s:%d:%d: [%s] %s\n" f.file f.line f.col f.rule f.msg

(* ---- inline annotations ---- *)

type suppression = {
  s_rule : string;
  s_line : int;  (** line the annotation sits on *)
  s_ok : bool;  (** has a non-empty justification *)
  mutable s_used : bool;
}

let find_substring line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub line i m = sub then Some i else go (i + 1) in
  go 0

(* Parse "(* <tool>: <rule> <justification> *)" out of one source line. *)
let suppression_of_line ~marker ~alias lineno line =
  match find_substring line marker with
  | None -> None
  | Some i ->
    let rest = String.sub line (i + String.length marker)
                 (String.length line - i - String.length marker) in
    let rest = match find_substring rest "*)" with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    let rest = String.trim rest in
    let rule, justification =
      match String.index_opt rest ' ' with
      | None -> (rest, "")
      | Some sp -> (String.sub rest 0 sp, String.trim (String.sub rest sp (String.length rest - sp)))
    in
    let rule = alias rule in
    Some { s_rule = rule; s_line = lineno; s_ok = justification <> ""; s_used = false }

(* [tool] is the annotation keyword ("lint", "race"); [alias] maps
   shorthand rule names onto canonical ones. *)
let scan_annotations ~tool ?(alias = Fun.id) source =
  let marker = "(* " ^ tool ^ ":" in
  String.split_on_char '\n' source
  |> List.mapi (fun i line -> suppression_of_line ~marker ~alias (i + 1) line)
  |> List.filter_map Fun.id

(* Apply inline suppressions: an annotation covers findings of its rule on
   its own line or the line directly below it.  Returns the surviving
   findings plus bad-annotation / unused-suppression errors. *)
let apply_inline ~tool ~path ~suppressions findings =
  let surviving =
    List.filter
      (fun f ->
        match
          List.find_opt
            (fun s -> s.s_rule = f.rule && (s.s_line = f.line || s.s_line = f.line - 1))
            suppressions
        with
        | Some s when s.s_ok ->
          s.s_used <- true;
          false
        | Some s ->
          (* covers the finding only once justified; keep both errors *)
          s.s_used <- true;
          true
        | None -> true)
      findings
  in
  let annotation_errors =
    List.concat_map
      (fun s ->
        let bad =
          if s.s_ok then []
          else
            [ { file = path; line = s.s_line; col = 0; rule = rule_bad_annotation;
                msg =
                  tool ^ " annotation needs a justification: (* " ^ tool ^ ": " ^ s.s_rule
                  ^ " <why> *)" } ]
        in
        let stale =
          if s.s_used then []
          else
            [ { file = path; line = s.s_line; col = 0; rule = rule_unused_suppression;
                msg = "annotation suppresses no " ^ s.s_rule ^ " finding on this or the next line" } ]
        in
        bad @ stale)
      suppressions
  in
  surviving @ annotation_errors

(* ---- allowlist ---- *)

type allow_entry = {
  a_path : string;
  a_rule : string;
  a_line : int;
  mutable a_used : bool;
}

let parse_allowlist path =
  if not (Sys.file_exists path) then []
  else
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.mapi (fun i line -> (i + 1, String.trim line))
    |> List.filter_map (fun (lineno, line) ->
           if line = "" || line.[0] = '#' then None
           else
             match String.split_on_char ' ' line with
             | file :: rule :: (_ :: _ as justification)
               when String.trim (String.concat " " justification) <> "" ->
               Some { a_path = file; a_rule = rule; a_line = lineno; a_used = false }
             | _ ->
               (* malformed line: surface as a finding via a poisoned entry *)
               Some { a_path = "\x00malformed"; a_rule = line; a_line = lineno; a_used = false })

let path_matches ~scanned ~allow =
  scanned = allow
  || (let ls = String.length scanned and la = String.length allow in
      ls > la && String.sub scanned (ls - la) la = allow
      && scanned.[ls - la - 1] = '/')

(* Drop findings matched by the allowlist; append malformed-line and
   unused-entry errors attributed to the allowlist file itself. *)
let apply_allowlist ~allowlist findings =
  let allow = match allowlist with None -> [] | Some f -> parse_allowlist f in
  let surviving =
    List.filter
      (fun f ->
        match
          List.find_opt
            (fun a -> a.a_rule = f.rule && path_matches ~scanned:f.file ~allow:a.a_path)
            allow
        with
        | Some a ->
          a.a_used <- true;
          false
        | None -> true)
      findings
  in
  let allowlist_errors =
    match allowlist with
    | None -> []
    | Some alf ->
      List.concat_map
        (fun a ->
          if a.a_path = "\x00malformed" then
            [ { file = alf; line = a.a_line; col = 0; rule = rule_bad_annotation;
                msg = "malformed allowlist line (want: <path> <rule> <justification>)" } ]
          else if not a.a_used then
            [ { file = alf; line = a.a_line; col = 0; rule = rule_unused_suppression;
                msg = Printf.sprintf "allowlist entry %s %s matches no finding" a.a_path a.a_rule } ]
          else [])
        allow
  in
  surviving @ allowlist_errors
