(* Determinism lint over OCaml parsetrees (compiler-libs).

   Walks every .ml file it is pointed at with an [Ast_iterator] and flags
   constructs that can leak nondeterminism — or order-dependence on
   implementation details — into simulation results:

     hashtbl-order   Hashtbl.iter / Hashtbl.fold / Hashtbl.to_seq* whose
                     result does not flow through an explicit sort.  OCaml
                     hash tables are deterministic for a fixed insertion
                     history, but bucket order is an implementation detail:
                     it shifts under resize thresholds, key-hash changes and
                     stdlib upgrades, so depending on it is a hazard.
     wall-clock      Sys.time / Unix.gettimeofday and friends: real time
                     must never reach simulation state (bench code that
                     times the host is allowlisted).
     global-rng      Random.* — all randomness must come from the seeded,
                     splittable Terradir_util.Splitmix streams.
     poly-compare    bare polymorphic [compare] (and (=)/(<>) applied to a
                     lambda): breaks on function-bearing types, gives
                     surprising NaN behavior on floats, and silently picks
                     structural order where a domain order was meant.
     marshal         Marshal.* — output is not stable across compiler
                     versions and happily serializes closures.
     obs-in-hot-path Obs.record in protocol code.  Every recording site
                     must carry an annotation naming the level gate and
                     the event's frequency, so hook growth on the hot
                     path stays a reviewed decision rather than drift.

   Suppression, per-site, with a recorded justification:

     - an inline annotation on the flagged line or the line above:
         (* lint: <rule> <justification> *)
       ("ordered" is accepted as an alias for hashtbl-order);
     - an allowlist file with "path rule justification" lines, matching
       any scanned file whose path ends with [path].

   An annotation without a justification is itself an error
   (bad-annotation), and so is a suppression that no finding uses
   (unused-suppression) — stale justifications must not accumulate. *)

type finding = Suppress.finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let rule_hashtbl = "hashtbl-order"
let rule_wall_clock = "wall-clock"
let rule_global_rng = "global-rng"
let rule_poly_compare = "poly-compare"
let rule_marshal = "marshal"
let rule_obs_hot_path = "obs-in-hot-path"
let rule_bad_annotation = Suppress.rule_bad_annotation
let rule_unused_suppression = Suppress.rule_unused_suppression
let rule_parse_error = "parse-error"

let all_rules =
  [
    rule_hashtbl; rule_wall_clock; rule_global_rng; rule_poly_compare; rule_marshal;
    rule_obs_hot_path;
  ]

module SSet = Set.Make (String)

(* Iteration primitives whose visit order is the bucket order. *)
let hashtbl_unordered =
  SSet.of_list [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

(* Applying any of these to an unordered iteration's result launders it. *)
let sort_functions =
  SSet.of_list
    [
      "List.sort"; "List.sort_uniq"; "List.stable_sort"; "List.fast_sort";
      "Array.sort"; "Array.stable_sort"; "Array.fast_sort";
    ]

let wall_clock_functions =
  SSet.of_list
    [
      "Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime"; "Unix.localtime";
      "Unix.mktime";
    ]

let ident_name lid =
  match Longident.flatten lid with
  | parts -> String.concat "." parts
  | exception _ -> ""

(* "ordered" is accepted as a shorthand for hashtbl-order in annotations. *)
let rule_alias r = if r = "ordered" then rule_hashtbl else r

(* ---- the AST walk ---- *)

let lint_source ~path ~source =
  let findings = ref [] in
  let add loc rule msg =
    let p = loc.Location.loc_start in
    findings := { file = path; line = p.Lexing.pos_lnum;
                  col = p.Lexing.pos_cnum - p.Lexing.pos_bol; rule; msg } :: !findings
  in
  let exempt_rng = Filename.basename path = "splitmix.ml" in
  (* > 0 while visiting the arguments of a sort application: an unordered
     hashtable iteration there is explicitly laundered. *)
  let in_sorted = ref 0 in
  let is_lambda (e : Parsetree.expression) =
    match e.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false
  in
  let rec head_is_sort (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> SSet.mem (ident_name txt) sort_functions
    | Pexp_apply (f, _) -> head_is_sort f
    | _ -> false
  in
  let check_ident loc lid =
    let name = ident_name lid in
    (match lid with
     | Longident.Ldot (Lident "Hashtbl", fn) when SSet.mem fn hashtbl_unordered ->
       if !in_sorted = 0 then
         add loc rule_hashtbl
           (Printf.sprintf
              "Hashtbl.%s visits bucket order; sort the result or annotate why order cannot matter"
              fn)
     | _ -> ());
    if SSet.mem name wall_clock_functions then
      add loc rule_wall_clock (name ^ " reads the wall clock; simulation state must only see Engine.now");
    if (not exempt_rng)
       && (match lid with
           | Longident.Ldot (Lident "Random", _) -> true
           | Longident.Ldot (Ldot (Lident "Random", _), _) -> true
           | _ -> false)
    then add loc rule_global_rng (name ^ " uses the global RNG; draw from a Terradir_util.Splitmix stream");
    (match name with
     | "compare" | "Stdlib.compare" | "Pervasives.compare" ->
       add loc rule_poly_compare
         "polymorphic compare; use the element type's comparator (Int.compare, Float.compare, ...)"
     | _ -> ());
    (match lid with
     | Longident.Ldot (Lident "Marshal", fn) ->
       add loc rule_marshal ("Marshal." ^ fn ^ " is unstable across compiler versions; use an explicit codec")
     | _ -> ());
    (match lid with
     | Longident.Ldot (Lident "Obs", "record")
     | Longident.Ldot (Ldot (_, "Obs"), "record") ->
       add loc rule_obs_hot_path
         (name
        ^ " in protocol code; annotate the level gate and how often the event fires")
     | _ -> ())
  in
  let iterator =
    let default = Ast_iterator.default_iterator in
    let expr it (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_ident { txt; loc } ->
        check_ident loc txt;
        default.expr it e
      | Pexp_apply (f, args) when head_is_sort f ->
        (* sort application: its arguments — including a nested unordered
           iteration producing the sort's input — are in sorted context *)
        it.expr it f;
        incr in_sorted;
        List.iter (fun (_, a) -> it.expr it a) args;
        decr in_sorted
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "|>"; _ }; _ }, [ (_, lhs); (_, rhs) ])
        when head_is_sort rhs ->
        it.expr it rhs;
        incr in_sorted;
        it.expr it lhs;
        decr in_sorted
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "@@"; _ }; _ }, [ (_, lhs); (_, rhs) ])
        when head_is_sort lhs ->
        it.expr it lhs;
        incr in_sorted;
        it.expr it rhs;
        decr in_sorted
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); loc }; _ }, args)
        when List.exists (fun (_, a) -> is_lambda a) args ->
        add loc rule_poly_compare
          (Printf.sprintf "(%s) applied to a function value always raises; compare explicitly" op);
        default.expr it e
      | _ -> default.expr it e
    in
    { default with expr }
  in
  (try
     let lexbuf = Lexing.from_string source in
     Location.init lexbuf path;
     let ast = Parse.implementation lexbuf in
     iterator.structure iterator ast
   with exn ->
     let line, col =
       match exn with
       | Syntaxerr.Error e ->
         let p = (Syntaxerr.location_of_error e).Location.loc_start in
         (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
       | _ -> (1, 0)
     in
     findings := { file = path; line; col; rule = rule_parse_error;
                   msg = "file does not parse as an OCaml implementation" } :: !findings);
  let suppressions = Suppress.scan_annotations ~tool:"lint" ~alias:rule_alias source in
  Suppress.apply_inline ~tool:"lint" ~path ~suppressions !findings

let lint_file path =
  let source = In_channel.with_open_text path In_channel.input_all in
  lint_source ~path ~source

(* ---- driving ---- *)

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let compare_findings = Suppress.compare_findings

let run ~allowlist ~paths =
  let files = List.concat_map ml_files_under paths in
  let raw = List.concat_map lint_file files in
  List.sort compare_findings (Suppress.apply_allowlist ~allowlist raw)

let pp_finding = Suppress.pp_finding
