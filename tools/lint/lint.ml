(* Determinism lint over OCaml parsetrees (compiler-libs).

   Walks every .ml file it is pointed at with an [Ast_iterator] and flags
   constructs that can leak nondeterminism — or order-dependence on
   implementation details — into simulation results:

     hashtbl-order   Hashtbl.iter / Hashtbl.fold / Hashtbl.to_seq* whose
                     result does not flow through an explicit sort.  OCaml
                     hash tables are deterministic for a fixed insertion
                     history, but bucket order is an implementation detail:
                     it shifts under resize thresholds, key-hash changes and
                     stdlib upgrades, so depending on it is a hazard.
     wall-clock      Sys.time / Unix.gettimeofday and friends: real time
                     must never reach simulation state (bench code that
                     times the host is allowlisted).
     global-rng      Random.* — all randomness must come from the seeded,
                     splittable Terradir_util.Splitmix streams.
     poly-compare    bare polymorphic [compare] (and (=)/(<>) applied to a
                     lambda): breaks on function-bearing types, gives
                     surprising NaN behavior on floats, and silently picks
                     structural order where a domain order was meant.
     marshal         Marshal.* — output is not stable across compiler
                     versions and happily serializes closures.
     obs-in-hot-path Obs.record in protocol code.  Every recording site
                     must carry an annotation naming the level gate and
                     the event's frequency, so hook growth on the hot
                     path stays a reviewed decision rather than drift.

   Suppression, per-site, with a recorded justification:

     - an inline annotation on the flagged line or the line above:
         (* lint: <rule> <justification> *)
       ("ordered" is accepted as an alias for hashtbl-order);
     - an allowlist file with "path rule justification" lines, matching
       any scanned file whose path ends with [path].

   An annotation without a justification is itself an error
   (bad-annotation), and so is a suppression that no finding uses
   (unused-suppression) — stale justifications must not accumulate. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let rule_hashtbl = "hashtbl-order"
let rule_wall_clock = "wall-clock"
let rule_global_rng = "global-rng"
let rule_poly_compare = "poly-compare"
let rule_marshal = "marshal"
let rule_obs_hot_path = "obs-in-hot-path"
let rule_bad_annotation = "bad-annotation"
let rule_unused_suppression = "unused-suppression"
let rule_parse_error = "parse-error"

let all_rules =
  [
    rule_hashtbl; rule_wall_clock; rule_global_rng; rule_poly_compare; rule_marshal;
    rule_obs_hot_path;
  ]

module SSet = Set.Make (String)

(* Iteration primitives whose visit order is the bucket order. *)
let hashtbl_unordered =
  SSet.of_list [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

(* Applying any of these to an unordered iteration's result launders it. *)
let sort_functions =
  SSet.of_list
    [
      "List.sort"; "List.sort_uniq"; "List.stable_sort"; "List.fast_sort";
      "Array.sort"; "Array.stable_sort"; "Array.fast_sort";
    ]

let wall_clock_functions =
  SSet.of_list
    [
      "Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime"; "Unix.localtime";
      "Unix.mktime";
    ]

let ident_name lid =
  match Longident.flatten lid with
  | parts -> String.concat "." parts
  | exception _ -> ""

(* ---- inline annotations ---- *)

type suppression = {
  s_rule : string;
  s_line : int;  (** line the annotation sits on *)
  s_ok : bool;  (** has a non-empty justification *)
  mutable s_used : bool;
}

let annotation_marker = "(* lint:"

let find_substring line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub line i m = sub then Some i else go (i + 1) in
  go 0

(* Parse "(* lint: <rule> <justification> *)" out of one source line. *)
let suppression_of_line lineno line =
  match find_substring line annotation_marker with
  | None -> None
  | Some i ->
    let rest = String.sub line (i + String.length annotation_marker)
                 (String.length line - i - String.length annotation_marker) in
    let rest = match find_substring rest "*)" with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    let rest = String.trim rest in
    let rule, justification =
      match String.index_opt rest ' ' with
      | None -> (rest, "")
      | Some sp -> (String.sub rest 0 sp, String.trim (String.sub rest sp (String.length rest - sp)))
    in
    let rule = if rule = "ordered" then rule_hashtbl else rule in
    Some { s_rule = rule; s_line = lineno; s_ok = justification <> ""; s_used = false }

let scan_annotations source =
  String.split_on_char '\n' source
  |> List.mapi (fun i line -> suppression_of_line (i + 1) line)
  |> List.filter_map Fun.id

(* ---- allowlist ---- *)

type allow_entry = {
  a_path : string;
  a_rule : string;
  a_line : int;
  mutable a_used : bool;
}

let parse_allowlist path =
  if not (Sys.file_exists path) then []
  else
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.mapi (fun i line -> (i + 1, String.trim line))
    |> List.filter_map (fun (lineno, line) ->
           if line = "" || line.[0] = '#' then None
           else
             match String.split_on_char ' ' line with
             | file :: rule :: (_ :: _ as justification)
               when String.trim (String.concat " " justification) <> "" ->
               Some { a_path = file; a_rule = rule; a_line = lineno; a_used = false }
             | _ ->
               (* malformed line: surface as a finding via a poisoned entry *)
               Some { a_path = "\x00malformed"; a_rule = line; a_line = lineno; a_used = false })

let path_matches ~scanned ~allow =
  scanned = allow
  || (let ls = String.length scanned and la = String.length allow in
      ls > la && String.sub scanned (ls - la) la = allow
      && scanned.[ls - la - 1] = '/')

(* ---- the AST walk ---- *)

let lint_source ~path ~source =
  let findings = ref [] in
  let add loc rule msg =
    let p = loc.Location.loc_start in
    findings := { file = path; line = p.Lexing.pos_lnum;
                  col = p.Lexing.pos_cnum - p.Lexing.pos_bol; rule; msg } :: !findings
  in
  let exempt_rng = Filename.basename path = "splitmix.ml" in
  (* > 0 while visiting the arguments of a sort application: an unordered
     hashtable iteration there is explicitly laundered. *)
  let in_sorted = ref 0 in
  let is_lambda (e : Parsetree.expression) =
    match e.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false
  in
  let rec head_is_sort (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> SSet.mem (ident_name txt) sort_functions
    | Pexp_apply (f, _) -> head_is_sort f
    | _ -> false
  in
  let check_ident loc lid =
    let name = ident_name lid in
    (match lid with
     | Longident.Ldot (Lident "Hashtbl", fn) when SSet.mem fn hashtbl_unordered ->
       if !in_sorted = 0 then
         add loc rule_hashtbl
           (Printf.sprintf
              "Hashtbl.%s visits bucket order; sort the result or annotate why order cannot matter"
              fn)
     | _ -> ());
    if SSet.mem name wall_clock_functions then
      add loc rule_wall_clock (name ^ " reads the wall clock; simulation state must only see Engine.now");
    if (not exempt_rng)
       && (match lid with
           | Longident.Ldot (Lident "Random", _) -> true
           | Longident.Ldot (Ldot (Lident "Random", _), _) -> true
           | _ -> false)
    then add loc rule_global_rng (name ^ " uses the global RNG; draw from a Terradir_util.Splitmix stream");
    (match name with
     | "compare" | "Stdlib.compare" | "Pervasives.compare" ->
       add loc rule_poly_compare
         "polymorphic compare; use the element type's comparator (Int.compare, Float.compare, ...)"
     | _ -> ());
    (match lid with
     | Longident.Ldot (Lident "Marshal", fn) ->
       add loc rule_marshal ("Marshal." ^ fn ^ " is unstable across compiler versions; use an explicit codec")
     | _ -> ());
    (match lid with
     | Longident.Ldot (Lident "Obs", "record")
     | Longident.Ldot (Ldot (_, "Obs"), "record") ->
       add loc rule_obs_hot_path
         (name
        ^ " in protocol code; annotate the level gate and how often the event fires")
     | _ -> ())
  in
  let iterator =
    let default = Ast_iterator.default_iterator in
    let expr it (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_ident { txt; loc } ->
        check_ident loc txt;
        default.expr it e
      | Pexp_apply (f, args) when head_is_sort f ->
        (* sort application: its arguments — including a nested unordered
           iteration producing the sort's input — are in sorted context *)
        it.expr it f;
        incr in_sorted;
        List.iter (fun (_, a) -> it.expr it a) args;
        decr in_sorted
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "|>"; _ }; _ }, [ (_, lhs); (_, rhs) ])
        when head_is_sort rhs ->
        it.expr it rhs;
        incr in_sorted;
        it.expr it lhs;
        decr in_sorted
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "@@"; _ }; _ }, [ (_, lhs); (_, rhs) ])
        when head_is_sort lhs ->
        it.expr it lhs;
        incr in_sorted;
        it.expr it rhs;
        decr in_sorted
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); loc }; _ }, args)
        when List.exists (fun (_, a) -> is_lambda a) args ->
        add loc rule_poly_compare
          (Printf.sprintf "(%s) applied to a function value always raises; compare explicitly" op);
        default.expr it e
      | _ -> default.expr it e
    in
    { default with expr }
  in
  (try
     let lexbuf = Lexing.from_string source in
     Location.init lexbuf path;
     let ast = Parse.implementation lexbuf in
     iterator.structure iterator ast
   with exn ->
     let line, col =
       match exn with
       | Syntaxerr.Error e ->
         let p = (Syntaxerr.location_of_error e).Location.loc_start in
         (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
       | _ -> (1, 0)
     in
     findings := { file = path; line; col; rule = rule_parse_error;
                   msg = "file does not parse as an OCaml implementation" } :: !findings);
  (* Apply inline suppressions: an annotation covers findings of its rule on
     its own line or the line directly below it. *)
  let suppressions = scan_annotations source in
  let surviving =
    List.filter
      (fun f ->
        match
          List.find_opt
            (fun s -> s.s_rule = f.rule && (s.s_line = f.line || s.s_line = f.line - 1))
            suppressions
        with
        | Some s when s.s_ok ->
          s.s_used <- true;
          false
        | Some s ->
          (* covers the finding only once justified; keep both errors *)
          s.s_used <- true;
          true
        | None -> true)
      !findings
  in
  let annotation_errors =
    List.concat_map
      (fun s ->
        let bad =
          if s.s_ok then []
          else
            [ { file = path; line = s.s_line; col = 0; rule = rule_bad_annotation;
                msg = "lint annotation needs a justification: (* lint: " ^ s.s_rule ^ " <why> *)" } ]
        in
        let stale =
          if s.s_used then []
          else
            [ { file = path; line = s.s_line; col = 0; rule = rule_unused_suppression;
                msg = "annotation suppresses no " ^ s.s_rule ^ " finding on this or the next line" } ]
        in
        bad @ stale)
      suppressions
  in
  surviving @ annotation_errors

let lint_file path =
  let source = In_channel.with_open_text path In_channel.input_all in
  lint_source ~path ~source

(* ---- driving ---- *)

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let run ~allowlist ~paths =
  let allow = match allowlist with None -> [] | Some f -> parse_allowlist f in
  let files = List.concat_map ml_files_under paths in
  let raw = List.concat_map lint_file files in
  let findings =
    List.filter
      (fun f ->
        match
          List.find_opt
            (fun a -> a.a_rule = f.rule && path_matches ~scanned:f.file ~allow:a.a_path)
            allow
        with
        | Some a ->
          a.a_used <- true;
          false
        | None -> true)
      raw
  in
  let allowlist_errors =
    match allowlist with
    | None -> []
    | Some alf ->
      List.concat_map
        (fun a ->
          if a.a_path = "\x00malformed" then
            [ { file = alf; line = a.a_line; col = 0; rule = rule_bad_annotation;
                msg = "malformed allowlist line (want: <path> <rule> <justification>)" } ]
          else if not a.a_used then
            [ { file = alf; line = a.a_line; col = 0; rule = rule_unused_suppression;
                msg = Printf.sprintf "allowlist entry %s %s matches no finding" a.a_path a.a_rule } ]
          else [])
        allow
  in
  List.sort compare_findings (findings @ allowlist_errors)

let pp_finding oc f =
  Printf.fprintf oc "%s:%d:%d: [%s] %s\n" f.file f.line f.col f.rule f.msg
